//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are equally
//! unavailable offline).  The parser covers the shapes this workspace
//! actually derives on:
//!
//! * named-field structs (any visibility, doc comments and other attributes
//!   are skipped),
//! * tuple structs (a single field serialises as its inner value, more
//!   fields as an array),
//! * enums with unit variants (serialised as their name string), struct
//!   variants and tuple variants (serialised externally tagged, like serde:
//!   `{"Variant": ...}`).
//!
//! Generics, `#[serde(...)]` attributes and unions are not supported and
//! cause a compile-time panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(it: &mut TokenIter) {
    loop {
        let is_hash = matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
        if !is_hash {
            return;
        }
        it.next(); // '#'
        it.next(); // the [...] group
    }
}

fn skip_visibility(it: &mut TokenIter) {
    let is_pub = matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub");
    if is_pub {
        it.next();
        let is_restriction =
            matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis);
        if is_restriction {
            it.next(); // pub(crate) / pub(super) restriction
        }
    }
}

fn expect_ident(it: &mut TokenIter) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected an identifier, found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::Struct { name, fields: Fields::Named(parse_named_fields(g.stream())) }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Item::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) }
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                        Item::Struct { name, fields: Fields::Unit }
                    }
                    other => panic!("serde derive: unsupported struct shape for `{name}`: {other:?}"),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                return match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Item::Enum { name, variants: parse_variants(g.stream()) }
                    }
                    other => panic!("serde derive: unsupported enum shape for `{name}`: {other:?}"),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "union" => {
                panic!("serde derive: unions are not supported")
            }
            None => panic!("serde derive: no struct or enum found in input"),
            _ => {}
        }
    }
}

fn reject_generics(it: &mut TokenIter, name: &str) {
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic type `{name}` is not supported by the vendored serde");
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde derive: expected `:` after field name, found {other:?}"),
                }
                skip_type_until_comma(&mut it);
            }
            Some(other) => panic!("serde derive: unexpected token in fields: {other:?}"),
        }
    }
    names
}

/// Consumes type tokens until (and including) the next comma that is not
/// nested inside `<...>` generic arguments.  Parenthesised/bracketed parts of
/// a type arrive as single groups, so only angle brackets need depth
/// tracking; the `>` of a `->` return arrow (fn-pointer types) must not be
/// counted as closing a generic.
fn skip_type_until_comma(it: &mut TokenIter) {
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in it.by_ref() {
        let mut is_dash = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == '-' => is_dash = true,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        prev_dash = is_dash;
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut has_tokens = false;
    let mut depth = 0i32;
    let mut prev_dash = false;
    for tt in ts {
        let mut is_dash = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                if !prev_dash {
                    depth -= 1;
                }
                has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '-' => {
                is_dash = true;
                has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if has_tokens {
                    count += 1;
                }
                has_tokens = false;
            }
            _ => has_tokens = true,
        }
        prev_dash = is_dash;
    }
    if has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let Some(tt) = it.next() else { break };
        let TokenTree::Ident(id) = tt else {
            panic!("serde derive: expected a variant name, found {tt:?}")
        };
        let name = id.to_string();
        let fields = {
            let named =
                matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace);
            let tuple = matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis);
            if named || tuple {
                let Some(TokenTree::Group(g)) = it.next() else { unreachable!() };
                if named {
                    Fields::Named(parse_named_fields(g.stream()))
                } else {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
            } else {
                Fields::Unit
            }
        };
        // Consume up to and including the separating comma (also skips any
        // explicit discriminant, which this derive does not support values of).
        for tt in it.by_ref() {
            if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn named_fields_to_object(fields: &[String], access_prefix: &str) -> String {
    let mut s = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        s.push_str(&format!(
            "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({access_prefix}{f})));\n"
        ));
    }
    s
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let mut s = named_fields_to_object(fields, "&self.");
                    s.push_str("::serde::Value::Object(__fields)");
                    s
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let object = named_fields_to_object(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{object}\
                             ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Object(__fields))])\n}},\n"
                        ));
                    }
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__x0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn named_fields_from_map(owner: &str, fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(::serde::__field(__map, \"{f}\"))\
                 .map_err(|e| ::serde::Error::custom(format!(\"field `{f}` of `{owner}`: {{e}}\")))?,"
            )
        })
        .collect::<Vec<String>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fields) => {
                    let inits = named_fields_from_map(name, fields);
                    format!(
                        "let __map = __v.as_object().ok_or_else(|| ::serde::Error::custom(\
                         format!(\"expected an object for struct `{name}`, found {{}}\", \
                         __v.type_name())))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}\n}})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom(\
                         \"expected an array for tuple struct `{name}`\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple length for `{name}`\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Fields::Named(fields) => {
                        let inits = named_fields_from_map(name, fields);
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __map = __content.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected an object for variant \
                             `{name}::{vn}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}\n}})\n}}\n"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__content)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __content.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected an array for variant \
                             `{name}::{vn}`\"))?;\n\
                             if __items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple length for `{name}::{vn}`\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{}}` of enum `{name}`\", __other))),\n\
                             }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __content) = &__pairs[0];\n\
                                 let _ = __content;\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     format!(\"unknown variant `{{}}` of enum `{name}`\", \
                                     __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"invalid value of type {{}} for enum `{name}`\", \
                             __other.type_name()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

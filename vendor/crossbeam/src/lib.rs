//! Offline, API-compatible stand-in for the subset of [`crossbeam`] this
//! workspace uses: unbounded channels with cloneable senders.
//!
//! Backed by `std::sync::mpsc`, which provides exactly the
//! multi-producer/single-consumer shape the parallel scheduler needs (every
//! PPE thread owns one receiver; senders are cloned freely).
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

/// Multi-producer channels (the `crossbeam-channel` subset).
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when no message is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone and the
    /// channel has been drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives, failing only once every sender is
        /// dropped and the channel is drained (used by worker-pool threads).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// A blocking iterator over received messages; ends when every
        /// sender has been dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_blocks_until_message_or_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    tx.send(7).unwrap();
                    // Dropping tx disconnects after the message is consumed.
                });
                assert_eq!(rx.recv(), Ok(7));
                assert_eq!(rx.recv(), Err(RecvError));
            });
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || tx.send(i).unwrap());
                }
                drop(tx);
                let mut got = Vec::new();
                loop {
                    match rx.try_recv() {
                        Ok(v) => got.push(v),
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                    }
                }
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2, 3]);
            });
        }
    }
}

//! Offline, API-compatible stand-in for the subset of [`crossbeam`] this
//! workspace uses: unbounded channels with cloneable senders **and**
//! cloneable receivers (real `crossbeam-channel` channels are
//! multi-producer/multi-consumer; the service's global worker pool relies on
//! that to let every worker pull from one shared injector queue).
//!
//! Backed by a `Mutex<VecDeque>` + `Condvar` queue that tracks live sender
//! and receiver counts, so disconnection semantics match upstream: a `send`
//! fails once every receiver is gone, and a blocking `recv` fails only once
//! every sender is gone *and* the queue is drained.
//!
//! [`crossbeam`]: https://docs.rs/crossbeam

/// Multi-producer multi-consumer channels (the `crossbeam-channel` subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// The shared interior of a channel.
    struct Core<T> {
        inner: Mutex<Inner<T>>,
        /// Signalled on every push and on every sender drop, so blocked
        /// receivers re-check both the queue and the disconnect condition.
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Core<T>>);

    /// The receiving half of an unbounded channel.  Cloneable: each message
    /// is delivered to exactly one receiver (the MPMC work-queue shape).
    pub struct Receiver<T>(Arc<Core<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when no message is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone and the
    /// channel has been drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let core = Arc::new(Core {
            inner: Mutex::new(Inner { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&core)), Receiver(core))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel lock poisoned").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel lock poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                // Wake every blocked receiver so it can observe disconnection.
                drop(inner);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel lock poisoned").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().expect("channel lock poisoned").receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel lock poisoned");
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.0.inner.lock().expect("channel lock poisoned");
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives, failing only once every sender is
        /// dropped and the channel is drained (used by worker-pool threads).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel lock poisoned");
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).expect("channel lock poisoned");
            }
        }

        /// A blocking iterator over received messages; ends when every
        /// sender has been dropped.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_blocks_until_message_or_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    tx.send(7).unwrap();
                    // Dropping tx disconnects after the message is consumed.
                });
                assert_eq!(rx.recv(), Ok(7));
                assert_eq!(rx.recv(), Err(RecvError));
            });
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            for i in 0..3 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(rx.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn works_across_threads() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for i in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || tx.send(i).unwrap());
                }
                drop(tx);
                let mut got = Vec::new();
                loop {
                    match rx.try_recv() {
                        Ok(v) => got.push(v),
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                    }
                }
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2, 3]);
            });
        }

        /// MPMC delivery: cloned receivers split one message stream — every
        /// message is consumed exactly once, across however many consumers.
        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded();
            let counted = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let rx = rx.clone();
                    let counted = &counted;
                    scope.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            counted.lock().unwrap().push(v);
                        }
                    });
                }
                drop(rx);
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
            });
            let mut got = counted.into_inner().unwrap();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        /// Disconnection needs *all* receiver clones gone before send fails,
        /// and all sender clones gone before recv fails.
        #[test]
        fn clones_keep_the_channel_alive() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            tx.send(9).unwrap();
            assert_eq!(rx2.recv(), Ok(9));
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(10).unwrap();
            assert_eq!(rx2.try_recv(), Ok(10));
            drop(tx2);
            assert_eq!(rx2.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}

//! Offline, API-compatible stand-in for the subset of [`criterion`] this
//! workspace uses: benchmark groups, `bench_function` /
//! `bench_with_input`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis, each benchmark runs
//! `sample_size` timed batches and prints the per-iteration minimum, mean
//! and maximum — enough to eyeball regressions and to keep every
//! `[[bench]]` target compiling and runnable offline.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so existing `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group `{name}`");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _criterion: self, sample_size }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.default_sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this implementation does not warm up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; batch count is fixed by
    /// [`BenchmarkGroup::sample_size`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus the
/// parameter it was instantiated with.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample batch and records its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size) };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {id:<40} (no samples recorded)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {id:<40} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
        min,
        mean,
        max,
        bencher.samples.len()
    );
}

/// Bundles benchmark functions into one group function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(1));
        group.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("mul", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    criterion_group!(shim_benches, sample_bench);

    #[test]
    fn group_machinery_runs() {
        shim_benches();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
    }
}

//! Test configuration and the deterministic random stream.

/// Configuration for a `proptest!` block, set through
/// `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
    /// Kept for API compatibility; this implementation does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Deterministic random stream used by strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a stream seeded from the test name, so every test draws an
    /// independent but reproducible sequence.  Set `PROPTEST_SEED` to an
    /// integer to perturb all streams at once.
    pub fn for_test(name: &str) -> TestRng {
        let seed_env: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed_env;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `[0, span)` by rejection (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = (u64::MAX / span) * span;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(TestRng::for_test("x").next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::for_test("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}

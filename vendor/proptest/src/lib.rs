//! Offline, API-compatible stand-in for the subset of [`proptest`] this
//! workspace uses: the `proptest!` macro, integer-range and tuple
//! strategies, `any::<T>()`, `ProptestConfig { cases, .. }` and the
//! `prop_assert*` macros.
//!
//! Each property runs `config.cases` times against a deterministic
//! per-test random stream (seeded from the test's name, overridable with
//! the `PROPTEST_SEED` environment variable).  Failing cases panic like an
//! ordinary assertion; input shrinking is not implemented.
//!
//! [`proptest`]: https://docs.rs/proptest

pub mod strategy;
pub mod test_runner;

/// The imports a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function per
/// recursion step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ($($pat),+) = (
                    $($crate::strategy::Strategy::generate(&$strategy, &mut __rng)),+
                );
                // The body sees each generated case exactly once; a panic
                // reports the zero-based case number for reproduction.
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let ::std::result::Result::Err(__payload) = __result {
                    eprintln!(
                        "proptest: property `{}` failed on case {} of {}",
                        stringify!($name), __case, __config.cases
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u64, u64)> {
        (1u64..=10, 20u64..30)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..=9, y in 0u32..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        /// Tuple strategies and helper functions returning `impl Strategy`.
        #[test]
        fn tuples_compose((a, b) in pair(), c in any::<u64>()) {
            prop_assert!((1..=10).contains(&a));
            prop_assert!((20..30).contains(&b));
            prop_assert_eq!(c, c);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn config_supports_struct_update_syntax() {
        let cfg = ProptestConfig { cases: 5, ..ProptestConfig::default() };
        assert_eq!(cfg.cases, 5);
        assert!(ProptestConfig::default().cases >= 32);
    }
}

//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + u128::from(rng.below(span))) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = end as u128 - start as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t; // the full 64-bit domain
                }
                (start as u128 + u128::from(rng.below(span as u64))) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// A type with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::for_test("range_strategies");
        for _ in 0..500 {
            let a = (4usize..=8).generate(&mut rng);
            assert!((4..=8).contains(&a));
            let b = (0usize..3).generate(&mut rng);
            assert!(b < 3);
        }
    }

    #[test]
    fn tuple_strategy_generates_componentwise() {
        let mut rng = TestRng::for_test("tuple_strategy");
        let (a, b, c) = (1u64..=2, 10usize..11, any::<u64>()).generate(&mut rng);
        assert!((1..=2).contains(&a));
        assert_eq!(b, 10);
        let _ = c;
    }
}

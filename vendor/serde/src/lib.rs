//! Offline, API-compatible stand-in for the subset of [`serde`] this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the real `serde` is
//! replaced by this minimal vendored implementation.  It keeps the two public
//! touch points the workspace relies on:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the companion
//!   `serde_derive` proc-macro crate behind the `derive` feature), and
//! * the [`Serialize`] / [`Deserialize`] traits that `serde_json` drives.
//!
//! Instead of serde's visitor architecture, both traits convert through a
//! single in-memory [`Value`] tree (the JSON data model).  That is all the
//! workspace needs: every serialised type round-trips through
//! `serde_json::{to_string, to_string_pretty, from_str}`.
//!
//! [`serde`]: https://serde.rs

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every [`Serialize`]/[`Deserialize`]
/// implementation converts through.
///
/// Object keys keep their insertion order so serialised output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The pairs of an object value.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly within `f64` range).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(n) => Some(n),
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Human-readable name of the JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a field of an object by name (used by the derive macro).
///
/// Missing fields read as `null`, which lets `Option` fields default to
/// `None` while every other type reports a clear type mismatch.
pub fn __field<'a>(pairs: &'a [(String, Value)], name: &str) -> &'a Value {
    const NULL: Value = Value::Null;
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected an unsigned integer, found {}", v.type_name()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected an integer, found {}", v.type_name()))
                })?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected a number, found {}", v.type_name())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected a boolean, found {}", v.type_name())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected a string, found {}", v.type_name())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected an array, found {}", v.type_name())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected an array, found {}", v.type_name()))
                })?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected an array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(Vec::<Option<u32>>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u32, 2u64);
        assert_eq!(<(u32, u64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let pairs = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(__field(&pairs, "a"), &Value::U64(1));
        assert_eq!(__field(&pairs, "b"), &Value::Null);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(String::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Null).is_err());
    }
}

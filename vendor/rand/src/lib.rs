//! Offline, API-compatible stand-in for the subset of [`rand`] this
//! workspace uses: [`Rng::gen_range`] over integer ranges,
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — fast,
//! statistically solid for workload generation, and fully deterministic for
//! a given seed (the reproducibility property the workspace's tests and
//! benches rely on).  It intentionally does **not** match the stream of the
//! real `rand::rngs::StdRng`.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::{Range, RangeInclusive};

/// A source of randomness, with the sampling helpers the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a uniformly distributed value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 random mantissa bits give a uniform float in [0, 1).
        let f = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        f < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly samples `[0, span)` by rejection, avoiding modulo bias.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Accept only values below the largest multiple of `span`.
    let zone = (u64::MAX / span) * span;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                match (end - start).checked_add(1) {
                    Some(span) => start + uniform_below(rng, span as u64) as $t,
                    // start..=MAX with start == 0: the full domain.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t; // the full domain
                }
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// Ready-made generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            if s == [0; 4] {
                s[0] = 1; // xoshiro must not start from the all-zero state
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(1..=79);
            assert!((1..=79).contains(&x));
            let y: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&y));
            let z: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_domain_roughly_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5u64..=5), 5);
        assert_eq!(rng.gen_range(0usize..1), 0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

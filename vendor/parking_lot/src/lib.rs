//! Offline, API-compatible stand-in for the subset of [`parking_lot`] this
//! workspace uses: a [`Mutex`] whose `lock()` returns the guard directly
//! (no poisoning `Result`).
//!
//! Backed by `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's panic-transparent behaviour closely
//! enough for the parallel scheduler's incumbent bookkeeping.
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::sync;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutual-exclusion primitive with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}

//! Cross-scheduler conformance suite: every exact scheduler in the workspace
//! — serial A*, the Chen & Yu branch-and-bound baseline, Aε* with ε = 0,
//! exhaustive enumeration, and the parallel A* in both duplicate-detection
//! modes with q ∈ {1, 2} — must return the same optimal makespan on a
//! deterministic corpus of small random and structured instances, and every
//! returned schedule must be feasible.  All families are dispatched through
//! the facade's scheduler registry.
//!
//! The corpus stays at ≤ 10 nodes (seeds chosen with the PR 1 probe pattern
//! for the vendored RNG stream) so the exponential searches remain fast on
//! the single-core CI host.
//!
//! The duplicate-detection modes exercised by the parallel runs can be
//! pinned through the `OPTSCHED_DUP_MODE` environment variable (`local`,
//! `sharded`, or unset for both), so CI can fail fast on a regression in
//! either path; see `.github/workflows/ci.yml`.

use optsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The duplicate-detection modes this process should exercise.
fn modes_under_test() -> Vec<DuplicateDetection> {
    match std::env::var("OPTSCHED_DUP_MODE") {
        Ok(v) => {
            let mode: DuplicateDetection =
                v.parse().unwrap_or_else(|e| panic!("OPTSCHED_DUP_MODE: {e}"));
            vec![mode]
        }
        Err(_) => vec![DuplicateDetection::Local, DuplicateDetection::ShardedGlobal],
    }
}

/// The deterministic conformance corpus: structured graphs plus random DAGs
/// over the paper's CCR sweep, all ≤ 10 nodes.
fn corpus() -> Vec<(String, TaskGraph, ProcNetwork)> {
    let mut cases: Vec<(String, TaskGraph, ProcNetwork)> = vec![
        ("paper-example".into(), paper_example_dag(), ProcNetwork::ring(3)),
        ("fork-join".into(), fork_join(3, 4, 2), ProcNetwork::fully_connected(3)),
        ("chain".into(), chain(6, 3, 4), ProcNetwork::ring(3)),
        ("out-tree".into(), out_tree(2, 2, 4, 3), ProcNetwork::fully_connected(2)),
        ("in-tree".into(), in_tree(2, 2, 4, 3), ProcNetwork::star(3)),
    ];
    // Random instances: one RNG stream per probe-tested seed, as in PR 1.
    let mut rng = StdRng::seed_from_u64(42);
    for &ccr in &PAPER_CCRS {
        for nodes in [6usize, 7] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes, ccr, ..Default::default() },
                &mut rng,
            );
            cases.push((format!("random-v{nodes}-ccr{ccr}"), g, ProcNetwork::ring(3)));
        }
    }
    cases
}

/// The headline conformance assertion: five scheduler families, one optimum.
/// Every family is dispatched by name through the facade's
/// [`SchedulerRegistry`] — the same path the CLI and the experiment binaries
/// use — instead of hand-matching scheduler types.
#[test]
fn all_schedulers_agree_on_the_optimal_makespan() {
    let modes = modes_under_test();
    for (name, graph, net) in corpus() {
        let problem = SchedulingProblem::new(graph.clone(), net.clone());
        // Aε* degenerates to an exact search at ε = 0; `exhaustive` certifies
        // the optimum by brute force on the smallest instances (it is itself
        // exponential, so it is skipped above 7 nodes).
        let spec = SchedulerSpec { epsilon: 0.0, ..Default::default() };
        let registry = SchedulerRegistry::with_spec(spec);

        // Serial A* is the reference.
        let astar = registry.get("astar").expect("registered").run(&problem).result;
        assert!(astar.is_optimal(), "{name}: A* must prove optimality");
        let optimum = astar.schedule_length;

        let mut families = vec!["aeps", "chenyu"];
        if graph.num_nodes() <= 7 {
            families.push("exhaustive");
        }
        for family in families {
            let r = registry.get(family).expect("registered").run(&problem).result;
            assert!(r.is_optimal(), "{name}: {family}");
            assert_eq!(r.schedule_length, optimum, "{name}: {family}");
            r.expect_schedule().validate(&graph, &net).unwrap();
        }

        // Parallel A*: every duplicate-detection mode, q ∈ {1, 2}.
        for &mode in &modes {
            for q in [1usize, 2] {
                let spec = SchedulerSpec {
                    parallel: ParallelConfig::exact(q).with_duplicate_detection(mode),
                    ..Default::default()
                };
                let r = SchedulerRegistry::with_spec(spec)
                    .get("parallel")
                    .expect("registered")
                    .run(&problem)
                    .result;
                assert!(r.is_optimal(), "{name}: parallel q={q} mode={mode}");
                assert_eq!(r.schedule_length, optimum, "{name}: parallel q={q} mode={mode}");
                r.expect_schedule().validate(&graph, &net).unwrap();
            }
        }
    }
}

/// Aε* conformance: for every ε the schedule stays within (1+ε)·optimum, in
/// both the serial and the parallel realisation (and both duplicate modes).
#[test]
fn epsilon_bound_holds_across_schedulers() {
    let modes = modes_under_test();
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 7, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(3));
    let optimum = AStarScheduler::new(&problem).run().schedule_length;

    for eps in [0.2, 0.5] {
        let bound = ((optimum as f64) * (1.0 + eps)).floor() as Cost;
        let serial = AEpsScheduler::new(&problem, eps).run();
        assert!(serial.schedule_length >= optimum && serial.schedule_length <= bound);
        for &mode in &modes {
            let cfg = ParallelConfig::approximate(2, eps).with_duplicate_detection(mode);
            let r = ParallelAStarScheduler::new(&problem, cfg).run();
            assert!(r.is_optimal(), "eps={eps} mode={mode}");
            assert!(
                r.schedule_length() >= optimum && r.schedule_length() <= bound,
                "eps={eps} mode={mode}: {} outside [{optimum}, {bound}]",
                r.schedule_length()
            );
        }
    }
}

/// The acceptance criterion of the sharded CLOSED table: on a contended
/// instance the global duplicate detection expands strictly fewer states
/// in total than the paper's local-only design, and the savings are visible
/// in the new redundant-work counters.
///
/// The instance and configuration (q = 4, eager communication) were probed
/// to give a wide margin — local mode expands ≥ 2× the states of sharded
/// mode on every observed interleaving — so the strict inequality is robust
/// to thread scheduling noise on the single-core host.
#[test]
fn sharded_mode_expands_strictly_fewer_states_under_contention() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
    let cfg = |mode| ParallelConfig {
        num_ppes: 4,
        min_comm_period: 1, // eager exchange maximises cross-PPE duplication
        duplicate_detection: mode,
        ..Default::default()
    };

    let local = ParallelAStarScheduler::new(&problem, cfg(DuplicateDetection::Local)).run();
    let sharded =
        ParallelAStarScheduler::new(&problem, cfg(DuplicateDetection::ShardedGlobal)).run();

    // Both modes remain exact…
    assert!(local.is_optimal() && sharded.is_optimal());
    assert_eq!(local.schedule_length(), sharded.schedule_length());

    // …but the global table kills the redundant work.
    assert!(
        sharded.total_expanded() < local.total_expanded(),
        "sharded mode expanded {} states, local mode {}",
        sharded.total_expanded(),
        local.total_expanded()
    );
    assert!(sharded.redundant_expansions_avoided() > 0);
    assert_eq!(local.redundant_expansions_avoided(), 0);

    // The avoided duplicates are reported consistently by the table itself.
    let table = sharded.closed_stats.as_ref().expect("sharded run reports table stats");
    assert!(table.total_hits() >= sharded.redundant_expansions_avoided());
    assert!(table.hit_rate() > 0.0);
}

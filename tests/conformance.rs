//! Cross-scheduler conformance suite: every exact scheduler in the workspace
//! — serial A*, the Chen & Yu branch-and-bound baseline, Aε* with ε = 0,
//! exhaustive enumeration, and the parallel A* in both duplicate-detection
//! modes with q ∈ {1, 2} — must return the same optimal makespan on a
//! deterministic corpus of small random and structured instances, and every
//! returned schedule must be feasible.  All families are dispatched through
//! the facade's scheduler registry.
//!
//! The corpus stays at ≤ 10 nodes (seeds chosen with the PR 1 probe pattern
//! for the vendored RNG stream) so the exponential searches remain fast on
//! the single-core CI host.
//!
//! The duplicate-detection modes exercised by the parallel runs can be
//! pinned through the `OPTSCHED_DUP_MODE` environment variable (`local`,
//! `sharded`, or unset for both), the state-store layouts through
//! `OPTSCHED_STORE` (`eager`, `arena`, or unset for both), and the arena's
//! refcounted reclamation through `OPTSCHED_ARENA_GC` (`on`, `off`, or
//! unset for both), so CI can fail fast on a regression in any path; see
//! `.github/workflows/ci.yml`.

use optsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The duplicate-detection modes this process should exercise.
fn modes_under_test() -> Vec<DuplicateDetection> {
    match std::env::var("OPTSCHED_DUP_MODE") {
        Ok(v) => {
            let mode: DuplicateDetection =
                v.parse().unwrap_or_else(|e| panic!("OPTSCHED_DUP_MODE: {e}"));
            vec![mode]
        }
        Err(_) => vec![DuplicateDetection::Local, DuplicateDetection::ShardedGlobal],
    }
}

/// The state-store layouts this process should exercise.
fn stores_under_test() -> Vec<StoreKind> {
    match std::env::var("OPTSCHED_STORE") {
        Ok(v) => {
            let store: StoreKind = v.parse().unwrap_or_else(|e| panic!("OPTSCHED_STORE: {e}"));
            vec![store]
        }
        Err(_) => vec![StoreKind::EagerClone, StoreKind::DeltaArena],
    }
}

/// The arena-GC settings this process should exercise.
fn gcs_under_test() -> Vec<bool> {
    match std::env::var("OPTSCHED_ARENA_GC") {
        Ok(v) => match v.as_str() {
            "on" | "true" | "1" => vec![true],
            "off" | "false" | "0" => vec![false],
            other => panic!("OPTSCHED_ARENA_GC: unknown value `{other}` (expected on|off)"),
        },
        Err(_) => vec![true, false],
    }
}

/// The deterministic conformance corpus: structured graphs plus random DAGs
/// over the paper's CCR sweep, all ≤ 10 nodes.
fn corpus() -> Vec<(String, TaskGraph, ProcNetwork)> {
    let mut cases: Vec<(String, TaskGraph, ProcNetwork)> = vec![
        ("paper-example".into(), paper_example_dag(), ProcNetwork::ring(3)),
        ("fork-join".into(), fork_join(3, 4, 2), ProcNetwork::fully_connected(3)),
        ("chain".into(), chain(6, 3, 4), ProcNetwork::ring(3)),
        ("out-tree".into(), out_tree(2, 2, 4, 3), ProcNetwork::fully_connected(2)),
        ("in-tree".into(), in_tree(2, 2, 4, 3), ProcNetwork::star(3)),
    ];
    // Random instances: one RNG stream per probe-tested seed, as in PR 1.
    let mut rng = StdRng::seed_from_u64(42);
    for &ccr in &PAPER_CCRS {
        for nodes in [6usize, 7] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes, ccr, ..Default::default() },
                &mut rng,
            );
            cases.push((format!("random-v{nodes}-ccr{ccr}"), g, ProcNetwork::ring(3)));
        }
    }
    cases
}

/// The headline conformance assertion: five scheduler families, one optimum.
/// Every family is dispatched by name through the facade's
/// [`SchedulerRegistry`] — the same path the CLI and the experiment binaries
/// use — instead of hand-matching scheduler types.
#[test]
fn all_schedulers_agree_on_the_optimal_makespan() {
    let modes = modes_under_test();
    let stores = stores_under_test();
    let gcs = gcs_under_test();
    for (name, graph, net) in corpus() {
        let problem = SchedulingProblem::new(graph.clone(), net.clone());

        // Serial A* at the defaults is the reference.
        let astar =
            SchedulerRegistry::builtin().get("astar").expect("registered").run(&problem).result;
        assert!(astar.is_optimal(), "{name}: A* must prove optimality");
        let optimum = astar.schedule_length;

        for &gc in &gcs {
            // Aε* degenerates to an exact search at ε = 0; `exhaustive`
            // certifies the optimum by brute force on the smallest instances
            // (it is itself exponential, so it is skipped above 7 nodes).
            let spec = SchedulerSpec { epsilon: 0.0, arena_gc: gc, ..Default::default() };
            let registry = SchedulerRegistry::with_spec(spec);
            let mut families = vec!["astar", "aeps", "chenyu"];
            if graph.num_nodes() <= 7 {
                families.push("exhaustive");
            }
            for family in families {
                let r = registry.get(family).expect("registered").run(&problem).result;
                assert!(r.is_optimal(), "{name}: {family} gc={gc}");
                assert_eq!(r.schedule_length, optimum, "{name}: {family} gc={gc}");
                r.expect_schedule().validate(&graph, &net).unwrap();
            }

            // Parallel A*: every duplicate-detection mode × state-store
            // layout, q ∈ {1, 2}.  The store and GC knobs are passed through
            // the spec — the same path the CLI's `--store`/`--arena-gc` take.
            for &mode in &modes {
                for &store in &stores {
                    for q in [1usize, 2] {
                        let spec = SchedulerSpec {
                            parallel: ParallelConfig::exact(q).with_duplicate_detection(mode),
                            store,
                            arena_gc: gc,
                            ..Default::default()
                        };
                        let ctx =
                            format!("{name}: parallel q={q} mode={mode} store={store} gc={gc}");
                        let r = SchedulerRegistry::with_spec(spec)
                            .get("parallel")
                            .expect("registered")
                            .run(&problem)
                            .result;
                        assert!(r.is_optimal(), "{ctx}");
                        assert_eq!(r.schedule_length, optimum, "{ctx}");
                        r.expect_schedule().validate(&graph, &net).unwrap();
                        if store == StoreKind::DeltaArena {
                            // Without transfers (q = 1) the delta arena keeps
                            // at most the pinned root plus one scratch state;
                            // at q > 1 deep transfers arrive as snapshot
                            // roots, so only the replay signature (no eager
                            // run ever replays a delta) still discriminates.
                            if q == 1 {
                                assert!(
                                    r.stats.peak_live_states <= 2,
                                    "{ctx}: arena held {} live full states",
                                    r.stats.peak_live_states
                                );
                            }
                            // A search that pops past the root must rebuild
                            // those states by replay (bound-terminated runs
                            // that only ever expand full roots replay
                            // nothing, so gate on the expansion count).
                            if r.stats.expanded > 2 {
                                assert!(
                                    r.stats.replayed_deltas > 0,
                                    "{ctx}: the delta store expands by replay"
                                );
                            }
                        }
                        if !gc {
                            assert_eq!(
                                r.stats.reclaimed_records, 0,
                                "{ctx}: GC off must be append-only"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Weighted-A* conformance over the whole corpus: at weight 1.0 the `wastar`
/// entry *is* A* — same optimum and bit-identical expansion/generation
/// counts — and at larger weights every schedule stays within `w × optimum`
/// while remaining feasible.  (The service relies on both halves: weight-1
/// requests are exact, and deadline-pressure weights keep their bound.)
#[test]
fn wastar_at_weight_one_agrees_with_astar_and_respects_its_bound_above() {
    for (name, graph, net) in corpus() {
        let problem = SchedulingProblem::new(graph.clone(), net.clone());
        let astar = AStarScheduler::new(&problem).run();
        assert!(astar.is_optimal(), "{name}");
        let optimum = astar.schedule_length;

        let spec = SchedulerSpec { weight: 1.0, ..Default::default() };
        let exact =
            SchedulerRegistry::with_spec(spec).get("wastar").expect("registered").run(&problem);
        assert!(exact.result.is_optimal(), "{name}: wastar(1.0)");
        assert_eq!(exact.result.schedule_length, optimum, "{name}: wastar(1.0)");
        assert_eq!(
            (exact.result.stats.expanded, exact.result.stats.generated),
            (astar.stats.expanded, astar.stats.generated),
            "{name}: wastar at weight 1.0 must be bit-identical to A*"
        );
        exact.result.expect_schedule().validate(&graph, &net).unwrap();

        for weight in [1.5, 2.0] {
            let spec = SchedulerSpec { weight, ..Default::default() };
            let r = SchedulerRegistry::with_spec(spec)
                .get("wastar")
                .expect("registered")
                .run(&problem)
                .result;
            let bound = ((optimum as f64) * weight).floor() as Cost;
            assert!(
                r.schedule_length >= optimum && r.schedule_length <= bound,
                "{name}: wastar({weight}) gave {} outside [{optimum}, {bound}]",
                r.schedule_length
            );
            r.expect_schedule().validate(&graph, &net).unwrap();
        }
    }
}

/// Aε* conformance: for every ε the schedule stays within (1+ε)·optimum, in
/// both the serial and the parallel realisation (and both duplicate modes).
#[test]
fn epsilon_bound_holds_across_schedulers() {
    let modes = modes_under_test();
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 7, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(3));
    let optimum = AStarScheduler::new(&problem).run().schedule_length;

    for eps in [0.2, 0.5] {
        let bound = ((optimum as f64) * (1.0 + eps)).floor() as Cost;
        let serial = AEpsScheduler::new(&problem, eps).run();
        assert!(serial.schedule_length >= optimum && serial.schedule_length <= bound);
        for &mode in &modes {
            let cfg = ParallelConfig::approximate(2, eps).with_duplicate_detection(mode);
            let r = ParallelAStarScheduler::new(&problem, cfg).run();
            assert!(r.is_optimal(), "eps={eps} mode={mode}");
            assert!(
                r.schedule_length() >= optimum && r.schedule_length() <= bound,
                "eps={eps} mode={mode}: {} outside [{optimum}, {bound}]",
                r.schedule_length()
            );
        }
    }
}

/// The acceptance criterion of the sharded CLOSED table: on a contended
/// instance the global duplicate detection expands strictly fewer states
/// in total than the paper's local-only design, and the savings are visible
/// in the new redundant-work counters.
///
/// The instance and configuration (q = 4, eager communication) were probed
/// to give a wide margin — local mode expands ≥ 2× the states of sharded
/// mode on every observed interleaving — so the strict inequality is robust
/// to thread scheduling noise on the single-core host.
#[test]
fn sharded_mode_expands_strictly_fewer_states_under_contention() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
    let cfg = |mode| ParallelConfig {
        num_ppes: 4,
        min_comm_period: 1, // eager exchange maximises cross-PPE duplication
        duplicate_detection: mode,
        ..Default::default()
    };

    let local = ParallelAStarScheduler::new(&problem, cfg(DuplicateDetection::Local)).run();
    let sharded =
        ParallelAStarScheduler::new(&problem, cfg(DuplicateDetection::ShardedGlobal)).run();

    // Both modes remain exact…
    assert!(local.is_optimal() && sharded.is_optimal());
    assert_eq!(local.schedule_length(), sharded.schedule_length());

    // …but the global table kills the redundant work.
    assert!(
        sharded.total_expanded() < local.total_expanded(),
        "sharded mode expanded {} states, local mode {}",
        sharded.total_expanded(),
        local.total_expanded()
    );
    assert!(sharded.redundant_expansions_avoided() > 0);
    assert_eq!(local.redundant_expansions_avoided(), 0);

    // The avoided duplicates are reported consistently by the table itself.
    let table = sharded.closed_stats.as_ref().expect("sharded run reports table stats");
    assert!(table.total_hits() >= sharded.redundant_expansions_avoided());
    assert!(table.hit_rate() > 0.0);
}

/// The PR 4 extension of the PR 2 table stress test: q = 4 PPEs on arena
/// stores hammer the sharded CLOSED table through the *real* scheduler with
/// eager communication, so claimed states are continuously popped,
/// materialised, shipped (load sharing **and** the ownership-transferring
/// election) and adopted into the receivers' delta arenas — shallow states
/// as re-rooted chains, deep ones as single snapshot records.  Across
/// repeated contended runs no signature claim may be lost:
///
/// * every run stays optimal (a lost claim silently drops the sole live copy
///   of a state, which shows up here as a missed optimum),
/// * the table's books balance — entries equal first-time claims, and every
///   hit is a *generation-time* duplicate counted by exactly one PPE.
///   Owned transfers (load shares and election transfers) bypass the table
///   entirely, so `duplicates_global` cannot count election traffic: if an
///   election transfer were re-admitted through the table, its hit would
///   have no matching generation-time counter and the reconciliation below
///   would fail.
/// * the ownership-transferring election is actually exercised
///   (`election_transfers > 0` accumulated across runs) while local mode
///   records none.
#[test]
fn arena_transfers_lose_no_claims_under_4_thread_stress() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(3));
    let optimum = AStarScheduler::new(&problem).run().schedule_length;

    let mut elections_seen = 0u64;
    for run in 0..4 {
        let cfg = ParallelConfig {
            num_ppes: 4,
            min_comm_period: 1, // eager exchange: maximum transfer traffic
            num_shards: 4,
            store: StoreKind::DeltaArena,
            ..Default::default()
        };
        let r = ParallelAStarScheduler::new(&problem, cfg).run();
        assert!(r.is_optimal(), "run {run}");
        assert_eq!(r.schedule_length(), optimum, "run {run}: a claim was lost");
        r.schedule.validate(&g, problem.network()).unwrap();

        let table = r.closed_stats.as_ref().expect("sharded run reports table stats");
        let total = r.total_stats();
        assert_eq!(
            table.total_entries() as u64,
            table.total_misses(),
            "run {run}: every successful claim inserts exactly one entry"
        );
        assert_eq!(table.total_reopens(), 0, "run {run}");
        assert_eq!(
            table.total_hits(),
            total.duplicates + total.duplicates_global,
            "run {run}: a transfer was re-admitted through the table"
        );
        // Transfers arrive as delta chains (shallow) or snapshot roots
        // (deep), never as an eagerly cloned working set: descendants of
        // every arrival are delta records rebuilt by replay, and full
        // snapshots stay a strict subset of the live records.
        assert!(total.replayed_deltas > 0, "run {run}: the delta store expands by replay");
        assert!(
            total.peak_live_states <= total.peak_live_records,
            "run {run}: {} live full states exceed {} live records",
            total.peak_live_states,
            total.peak_live_records
        );
        elections_seen += total.election_transfers;
    }
    assert!(
        elections_seen > 0,
        "eagerly communicating contended runs must elect at least once"
    );

    // Local mode on the same instance: the paper's copy election, no
    // ownership transfers recorded.
    let cfg = ParallelConfig {
        num_ppes: 4,
        min_comm_period: 1,
        store: StoreKind::DeltaArena,
        ..Default::default()
    }
    .with_duplicate_detection(DuplicateDetection::Local);
    let r = ParallelAStarScheduler::new(&problem, cfg).run();
    assert!(r.is_optimal());
    assert_eq!(r.schedule_length(), optimum);
    assert_eq!(r.election_transfers(), 0);
}

/// The chain-shipping acceptance criterion: under the same eagerly
/// communicating 4-thread contention as the stress test above, shipping
/// delta *chains* (one fixed-size record per scheduled node) must keep the
/// in-flight record high-water mark strictly below the full-clone baseline,
/// which parks `v` records per transfer no matter how shallow the shipped
/// state is.  Both configurations are repeated and compared on their worst
/// observed peak, so the strict inequality is robust to thread-scheduling
/// noise on the single-core host; both must also stay optimal — cheaper
/// shipping must never cost correctness.
#[test]
fn delta_chain_shipping_undercuts_full_clone_in_flight_records() {
    let mut rng = StdRng::seed_from_u64(42);
    let g = generate_random_dag(
        &RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() },
        &mut rng,
    );
    let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(3));
    let optimum = AStarScheduler::new(&problem).run().schedule_length;

    let worst_peak = |store: StoreKind| {
        (0..4)
            .map(|run| {
                let cfg = ParallelConfig {
                    num_ppes: 4,
                    min_comm_period: 1, // eager exchange: maximum transfer traffic
                    store,
                    ..Default::default()
                };
                let r = ParallelAStarScheduler::new(&problem, cfg).run();
                assert!(r.is_optimal(), "store={store} run={run}");
                assert_eq!(r.schedule_length(), optimum, "store={store} run={run}");
                assert!(r.peak_in_flight > 0, "store={store} run={run}: transfers must flow");
                r.peak_in_flight
            })
            .max()
            .expect("four runs")
    };

    let chain_peak = worst_peak(StoreKind::DeltaArena);
    let clone_peak = worst_peak(StoreKind::EagerClone);
    assert!(
        chain_peak < clone_peak,
        "chain shipping parked {chain_peak} records in flight at worst, \
         the full-clone baseline {clone_peak}"
    );
}

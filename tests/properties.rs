//! Property-based tests (proptest) of the core invariants, run over randomly
//! generated DAGs, processor networks and cost distributions.

use optsched::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small random DAG described by (nodes, ccr-index, seed).
/// Sizes stay small enough that even the un-pruned exact search (which the
/// optimality property exercises) finishes quickly in debug builds.
fn dag_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (4usize..=8, 0usize..3, any::<u64>())
}

fn make_dag(nodes: usize, ccr_idx: usize, seed: u64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_random_dag(
        &RandomDagConfig { nodes, ccr: PAPER_CCRS[ccr_idx], ..Default::default() },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Level attributes: every parent has a strictly larger b-level than each
    /// of its children, t-levels are non-decreasing along edges, the static
    /// level never exceeds the b-level, and the critical path length is the
    /// maximum b-level of an entry node.
    #[test]
    fn level_invariants((nodes, ccr_idx, seed) in dag_params()) {
        let g = make_dag(nodes, ccr_idx, seed);
        let levels = GraphLevels::compute(&g);
        for e in g.edges() {
            prop_assert!(levels.b_level(e.src) > levels.b_level(e.dst));
            prop_assert!(levels.t_level(e.src) < levels.t_level(e.dst));
        }
        for n in g.node_ids() {
            prop_assert!(levels.static_level(n) <= levels.b_level(n));
            prop_assert!(levels.b_level(n) + levels.alap(n) == levels.critical_path_length());
        }
        let cp_from_entries =
            g.entry_nodes().iter().map(|&n| levels.b_level(n)).max().unwrap();
        prop_assert_eq!(cp_from_entries, levels.critical_path_length());
    }

    /// Every list-scheduling configuration produces a feasible schedule whose
    /// length lies between the computation-only critical path and the fully
    /// serial execution plus all communication.
    #[test]
    fn heuristic_schedules_are_feasible((nodes, ccr_idx, seed) in dag_params(), procs in 1usize..=4) {
        let g = make_dag(nodes, ccr_idx, seed);
        let net = ProcNetwork::fully_connected(procs);
        let s = upper_bound_schedule(&g, &net);
        prop_assert!(s.validate(&g, &net).is_ok());
        prop_assert!(s.makespan() >= g.schedule_length_lower_bound());
        prop_assert!(s.makespan() <= g.total_computation() + g.total_communication());
    }

    /// The A* search returns a feasible schedule that is optimal: no longer
    /// than the list heuristic, no shorter than the static critical path, and
    /// identical in length for every pruning configuration.
    #[test]
    fn astar_optimality_invariants((nodes, ccr_idx, seed) in dag_params(), procs in 2usize..=3) {
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(procs));
        let pruned = AStarScheduler::new(&problem).run();
        prop_assert!(pruned.is_optimal());
        prop_assert!(pruned.expect_schedule().validate(&g, problem.network()).is_ok());
        prop_assert!(pruned.schedule_length <= problem.upper_bound());
        prop_assert!(pruned.schedule_length >= problem.lower_bound());

        let unpruned = AStarScheduler::new(&problem).with_pruning(PruningConfig::none()).run();
        prop_assert_eq!(unpruned.schedule_length, pruned.schedule_length);

        let tight = AStarScheduler::new(&problem)
            .with_heuristic(HeuristicKind::TightStaticLevel)
            .run();
        prop_assert_eq!(tight.schedule_length, pruned.schedule_length);
    }

    /// Aε* never returns a schedule shorter than optimal or longer than
    /// (1+ε) times optimal.
    #[test]
    fn aeps_bound_holds((nodes, ccr_idx, seed) in dag_params(), eps_pct in 0u32..=60) {
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(2));
        let eps = f64::from(eps_pct) / 100.0;
        let optimal = AStarScheduler::new(&problem).run().schedule_length;
        let approx = AEpsScheduler::new(&problem, eps).run().schedule_length;
        prop_assert!(approx >= optimal);
        prop_assert!((approx as f64) <= (optimal as f64) * (1.0 + eps) + 1e-9);
    }

    /// The parallel scheduler is exact for any PPE count, topology choice and
    /// duplicate-detection mode.
    #[test]
    fn parallel_astar_is_exact((nodes, ccr_idx, seed) in dag_params(), q in 1usize..=4) {
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g.clone(), ProcNetwork::ring(3));
        let serial = AStarScheduler::new(&problem).run().schedule_length;
        for mode in [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal] {
            let cfg = ParallelConfig::exact(q).with_duplicate_detection(mode);
            let parallel = ParallelAStarScheduler::new(&problem, cfg).run();
            prop_assert_eq!(parallel.schedule_length(), serial, "mode={}", mode);
            prop_assert!(parallel.schedule.validate(&g, problem.network()).is_ok());
        }
    }

    /// The per-PPE state store is a pure memory/time trade: under random
    /// load-share + election schedules (random instances, random PPE counts,
    /// eager communication so transfers actually fly, plus whatever thread
    /// interleaving this run happens to produce), a parallel run on delta
    /// arenas returns a valid schedule with the same makespan as the eager
    /// clone-per-generation baseline, in both duplicate-detection modes —
    /// while holding at most root + scratch live full states per PPE.
    #[test]
    fn parallel_arena_store_matches_eager_store(
        (nodes, ccr_idx, seed) in (4usize..=7, 0usize..3, any::<u64>()),
        q in 2usize..=4,
        comm_period in 1u64..=2,
    ) {
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(3));
        for mode in [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal] {
            let cfg = ParallelConfig {
                num_ppes: q,
                min_comm_period: comm_period,
                ..Default::default()
            }
            .with_duplicate_detection(mode);
            let arena = ParallelAStarScheduler::new(&problem, cfg).run();
            let eager = ParallelAStarScheduler::new(
                &problem,
                cfg.with_store(StoreKind::EagerClone),
            ).run();
            prop_assert!(arena.is_optimal() && eager.is_optimal(), "mode={}", mode);
            prop_assert_eq!(
                arena.schedule_length(),
                eager.schedule_length(),
                "mode={}", mode
            );
            prop_assert!(arena.schedule.validate(&g, problem.network()).is_ok());
            prop_assert!(eager.schedule.validate(&g, problem.network()).is_ok());
            // The per-PPE stores hold roots, scratch states and adopted
            // snapshot transfers — always a subset of the live records; the
            // airtight headline `peak_live_states()` additionally folds in
            // the in-flight transfer peak.
            prop_assert!(
                arena.total_stats().peak_live_states
                    <= arena.total_stats().peak_live_records
                        + q as u64, // one scratch state per PPE is not a record
                "mode={}: arena held {} live full states over {} records",
                mode,
                arena.total_stats().peak_live_states,
                arena.total_stats().peak_live_records
            );
            prop_assert_eq!(
                arena.peak_live_states(),
                arena.total_stats().peak_live_states + arena.peak_in_flight,
                "mode={}", mode
            );
            prop_assert!(
                eager.peak_live_states() >= arena.total_stats().peak_live_states
            );
        }
    }

    /// Arena lifecycle bookkeeping under random generate / materialise /
    /// release / ship schedules: the refcount books stay balanced at every
    /// step (every allocated record is either live or reclaimed — nothing
    /// leaks, nothing is double-freed), and releasing every outstanding
    /// handle drains the arena back to exactly its pinned root, no matter
    /// the order the handles die in.
    #[test]
    fn arena_refcount_books_stay_balanced(
        (nodes, ccr_idx, seed) in dag_params(),
        op_seed in any::<u64>(),
    ) {
        use optsched::core::engine::StateArena;
        use optsched::core::SearchState;
        use rand::Rng;
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(2));
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = StateArena::new(&problem, ArenaConfig::default());
        let mut handles = vec![arena.insert_root(SearchState::initial(&problem))];
        let mut allocs: u64 = 1;

        let mut op_rng = StdRng::seed_from_u64(op_seed);
        for _ in 0..80 {
            let op = op_rng.next_u32();
            prop_assert_eq!(
                arena.live_records() as u64 + arena.reclaimed_records(),
                allocs,
                "books out of balance mid-run"
            );
            if handles.is_empty() {
                break;
            }
            let pick = (op as usize / 4) % handles.len();
            match op % 4 {
                // Expand: store a child of a random held state (two op codes,
                // so trees grow often enough to exercise deep cascades).
                0 | 1 => {
                    let parent = arena.materialise(handles[pick]).clone();
                    let ready = parent.ready_nodes(&problem);
                    if !ready.is_empty() {
                        let n = ready[(op as usize / 8) % ready.len()];
                        let p = ProcId((op / 16) % problem.num_procs() as u32);
                        let d = parent.peek_child(&problem, n, p, h);
                        handles.push(arena.insert_child(handles[pick], &d));
                        allocs += 1;
                    }
                }
                // Prune: drop the handle (reclamation may cascade).
                2 => arena.release(handles.swap_remove(pick)),
                // Ship: extract the wire chain, release the local copy, adopt
                // it back — a loop-back transfer through the chain-shipping
                // wire format.  (Depth-0 states are never shipped.)
                _ => {
                    let id = handles[pick];
                    if arena.materialise(id).depth() > 0 {
                        let wire = arena.extract_chain(id);
                        handles.swap_remove(pick);
                        arena.release(id);
                        handles.push(arena.adopt_chain(&wire));
                        allocs += wire.len() as u64;
                    }
                }
            }
        }

        for id in handles.drain(..) {
            arena.release(id);
        }
        prop_assert_eq!(arena.live_records(), 1, "only the pinned root survives the drain");
        prop_assert_eq!(arena.live_records() as u64 + arena.reclaimed_records(), allocs);
    }

    /// The arena lifecycle knobs are behaviour-preserving: switching the
    /// refcounted reclamation off, or disabling the materialisation
    /// path-cache, leaves the search bit-identical — same optimum, same
    /// expansion / generation / duplicate counts — on every instance.  Only
    /// the memory and replay profile may differ, and reclamation can only
    /// shrink the record high-water mark.
    #[test]
    fn gc_and_path_cache_never_change_the_search(
        (nodes, ccr_idx, seed) in dag_params(),
        procs in 2usize..=3,
    ) {
        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(procs));
        let base = AStarScheduler::new(&problem).run();
        let no_gc = AStarScheduler::new(&problem).with_arena_gc(false).run();
        let no_cache = AStarScheduler::new(&problem).with_path_cache(0).run();
        for (name, r) in [("gc-off", &no_gc), ("cache-off", &no_cache)] {
            prop_assert_eq!(r.schedule_length, base.schedule_length, "{}", name);
            prop_assert_eq!(r.stats.expanded, base.stats.expanded, "{}", name);
            prop_assert_eq!(r.stats.generated, base.stats.generated, "{}", name);
            prop_assert_eq!(r.stats.duplicates, base.stats.duplicates, "{}", name);
        }
        prop_assert_eq!(no_gc.stats.reclaimed_records, 0, "gc-off is append-only");
        prop_assert!(
            base.stats.peak_live_records <= no_gc.stats.peak_live_records,
            "reclamation can only shrink the record high-water mark ({} vs {})",
            base.stats.peak_live_records, no_gc.stats.peak_live_records
        );
    }

    /// Adding a processor never makes the optimal schedule longer.
    #[test]
    fn more_processors_never_hurt((nodes, ccr_idx, seed) in dag_params()) {
        let g = make_dag(nodes, ccr_idx, seed);
        let mut previous = Cost::MAX;
        for p in 1..=3 {
            let problem = SchedulingProblem::new(g.clone(), ProcNetwork::fully_connected(p));
            let len = AStarScheduler::new(&problem).run().schedule_length;
            prop_assert!(len <= previous, "p={} gave {} > {}", p, len, previous);
            previous = len;
        }
    }

    /// Scaling every node and edge weight by a constant scales the optimal
    /// schedule length by exactly the same constant.
    #[test]
    fn optimal_length_scales_linearly((nodes, ccr_idx, seed) in dag_params(), factor in 2u64..=5) {
        let g = make_dag(nodes, ccr_idx, seed);
        let mut scaled = GraphBuilder::with_capacity(g.num_nodes());
        for n in g.node_ids() {
            scaled.add_node(g.weight(n) * factor);
        }
        for e in g.edges() {
            scaled.add_edge(e.src, e.dst, e.weight * factor).unwrap();
        }
        let scaled = scaled.build().unwrap();

        let p1 = SchedulingProblem::new(g, ProcNetwork::fully_connected(2));
        let p2 = SchedulingProblem::new(scaled, ProcNetwork::fully_connected(2));
        let len1 = AStarScheduler::new(&p1).run().schedule_length;
        let len2 = AStarScheduler::new(&p2).run().schedule_length;
        prop_assert_eq!(len1 * factor, len2);
    }

    /// Every schedule returned by any scheduler in the workspace is *valid*:
    /// complete, precedence and communication delays respected, no two tasks
    /// overlapping on a processor (all enforced by `Schedule::validate`), and
    /// the reported makespan equal to the maximum finish time over the tasks.
    /// The bounded schedulers additionally respect their guarantees:
    /// exact ones return the optimum, Aε* stays within (1+ε)·optimum, and the
    /// list heuristic is never better than the optimum.
    #[test]
    fn every_scheduler_returns_a_valid_schedule(
        (nodes, ccr_idx, seed) in dag_params(),
        procs in 2usize..=3,
        eps_pct in 0u32..=50,
    ) {
        let g = make_dag(nodes, ccr_idx, seed);
        let net = ProcNetwork::fully_connected(procs);
        let problem = SchedulingProblem::new(g.clone(), net.clone());
        let eps = f64::from(eps_pct) / 100.0;

        let astar = AStarScheduler::new(&problem).run();
        prop_assert!(astar.is_optimal());
        let optimum = astar.schedule_length;

        let aeps = AEpsScheduler::new(&problem, eps).run();
        let aeps_bound = ((optimum as f64) * (1.0 + eps)).floor() as Cost;
        prop_assert!(aeps.schedule_length >= optimum);
        prop_assert!(
            aeps.schedule_length <= aeps_bound,
            "Aε*({}) returned {} > bound {}", eps, aeps.schedule_length, aeps_bound
        );

        let mut schedules: Vec<(String, Schedule)> = vec![
            ("list".into(), upper_bound_schedule(&g, &net)),
            ("astar".into(), astar.expect_schedule().clone()),
            ("aeps".into(), aeps.expect_schedule().clone()),
            ("chenyu".into(), ChenYuScheduler::new(&problem).run().expect_schedule().clone()),
        ];
        for mode in [DuplicateDetection::Local, DuplicateDetection::ShardedGlobal] {
            let cfg = ParallelConfig::exact(2).with_duplicate_detection(mode);
            let r = ParallelAStarScheduler::new(&problem, cfg).run();
            prop_assert_eq!(r.schedule_length(), optimum, "parallel mode={}", mode);
            schedules.push((format!("parallel-{mode}"), r.schedule));
        }

        for (name, s) in &schedules {
            prop_assert!(s.is_complete(), "{}: incomplete schedule", name);
            // Precedence + communication delays + per-processor exclusivity.
            if let Err(e) = s.validate(&g, &net) {
                panic!("{name}: invalid schedule: {e}");
            }
            // The reported makespan is exactly the latest finish time.
            let max_finish = s.tasks().map(|t| t.finish).max().unwrap_or(0);
            prop_assert_eq!(s.makespan(), max_finish, "{}", name);
            // No schedule beats the optimum; the exact ones attain it.
            prop_assert!(s.makespan() >= optimum, "{}: beats the optimum", name);
        }
        prop_assert_eq!(schedules[1].1.makespan(), optimum);
        prop_assert_eq!(schedules[3].1.makespan(), optimum, "chenyu");
    }

    /// The random workload generator respects its contract: node count, at
    /// least one edge, weights within the uniform-distribution bounds.
    #[test]
    fn workload_generator_contract(nodes in 2usize..=40, ccr_idx in 0usize..3, seed in any::<u64>()) {
        let g = make_dag(nodes, ccr_idx, seed);
        prop_assert_eq!(g.num_nodes(), nodes);
        prop_assert!(g.num_edges() >= 1);
        for n in g.node_ids() {
            prop_assert!((1..=79).contains(&g.weight(n)));
        }
        // Acyclicity is guaranteed by construction: a topological order exists.
        prop_assert!(optsched::taskgraph::TopoOrder::compute(&g).is_some());
    }

    /// The service wire format round-trips: an `Instance` (task graph +
    /// processor network in the validated wire formats) survives JSON
    /// serialisation bit-for-bit, with an unchanged canonical signature —
    /// the service's cache interning must not depend on which side of the
    /// wire an instance came from.
    #[test]
    fn instance_json_round_trips(
        (nodes, ccr_idx, seed) in dag_params(),
        procs in 1usize..=4,
        topo in 0usize..3,
    ) {
        use optsched_service::{canonical_signature, Instance};
        let g = make_dag(nodes, ccr_idx, seed);
        let net = match topo {
            0 => ProcNetwork::fully_connected(procs),
            1 => ProcNetwork::ring(procs.max(2)),
            _ => ProcNetwork::star(procs.max(2)),
        };
        let inst = Instance::new(g, net);
        let json = serde_json::to_string(&inst).expect("instances serialise");
        let back: Instance = serde_json::from_str(&json).expect("instances parse back");
        prop_assert_eq!(&back, &inst);
        prop_assert_eq!(canonical_signature(&back), canonical_signature(&inst));
        // Pretty-printing (different whitespace, same content) parses to the
        // same instance too.
        let pretty: Instance =
            serde_json::from_str(&serde_json::to_string_pretty(&inst).expect("pretty"))
                .expect("pretty parses");
        prop_assert_eq!(&pretty, &inst);
    }

    /// `Schedule` JSON round-trips for real schedules of every shape the
    /// service can produce (here: the list heuristic over random instances).
    #[test]
    fn schedule_json_round_trips((nodes, ccr_idx, seed) in dag_params(), procs in 1usize..=4) {
        let g = make_dag(nodes, ccr_idx, seed);
        let net = ProcNetwork::fully_connected(procs);
        let s = upper_bound_schedule(&g, &net);
        let json = serde_json::to_string(&s).expect("schedules serialise");
        let back: Schedule = serde_json::from_str(&json).expect("schedules parse back");
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.makespan(), s.makespan());
        prop_assert!(back.validate(&g, &net).is_ok());
    }
}

/// The service answers malformed requests with a *structured error* —
/// `ok == false`, an error message, the fallback id — instead of dying,
/// for every flavour of malformed: not JSON at all, JSON of the wrong
/// shape, a request whose instance violates graph invariants, and an
/// unknown algorithm on a well-formed instance.
#[test]
fn service_answers_malformed_requests_with_structured_errors() {
    use optsched_service::{SchedulingService, ServiceConfig};

    let svc = SchedulingService::new(ServiceConfig::default());
    let cyclic_instance = r#"{"instance": {"graph": {"nodes": [{"weight": 1, "label": null},
        {"weight": 1, "label": null}], "edges": [{"src": 0, "dst": 1, "weight": 1},
        {"src": 1, "dst": 0, "weight": 1}]},
        "network": {"procs": [{"cycle_time": 1, "label": null}], "links": []}}}"#;
    for (line, needle) in [
        ("this is not json", "malformed"),
        ("{\"id\": 3}", "instance"),
        ("[1, 2, 3]", "malformed"),
        (cyclic_instance, "cycle"),
    ] {
        let resp = svc.handle_line(line, 77);
        assert!(!resp.ok, "{line}");
        assert_eq!(resp.id, 77);
        let err = resp.error.expect("structured error message");
        assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        assert!(resp.schedule.is_none());
    }

    // A well-formed instance with an unknown algorithm is also an error
    // response, not a death.
    let mut req = optsched_service::Request::new(optsched_service::Instance::new(
        paper_example_dag(),
        ProcNetwork::ring(3),
    ));
    req.algorithm = Some("quantum".to_string());
    let resp = svc.handle_request(&req, 5);
    assert!(!resp.ok);
    assert!(resp.error.unwrap().contains("unknown algorithm"));

    // And the service still works afterwards.
    req.algorithm = Some("astar".to_string());
    let resp = svc.handle_request(&req, 6);
    assert!(resp.ok);
    assert_eq!(resp.schedule_length, Some(14));
}

// ---------------------------------------------------------------------------
// Service result-cache properties: the LRU + max_age cache against a
// reference model.
// ---------------------------------------------------------------------------

/// A shared single-shard cache setup for the cache properties: one canonical
/// instance, entries distinguished by their algorithm string (distinct cache
/// keys in one shard without building many instances).
fn cache_fixture() -> (u64, optsched_service::CanonicalInstance, optsched_service::CachedResult) {
    use optsched_service::{canonical_signature, CachedResult, CanonicalInstance, Instance};
    let inst = Instance::new(paper_example_dag(), ProcNetwork::ring(3));
    let result = CachedResult {
        schedule: Schedule::new(1, 1),
        schedule_length: 14,
        quality: "optimal".to_string(),
        algorithm: "astar".to_string(),
        expanded: 0,
        peak_live_records: 0,
    };
    (canonical_signature(&inst), CanonicalInstance::of(&inst), result)
}

/// Deterministic op stream: (is_lookup, key index) pairs from a SplitMix64
/// walk, so every proptest case replays exactly.
fn cache_ops(seed: u64, n: usize) -> Vec<(bool, usize)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    (0..n).map(|_| ((next() % 2) == 0, (next() % 6) as usize)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The LRU cache against a reference model: for any op sequence the
    /// shard never exceeds its capacity, lookups hit exactly when the model
    /// says the key is live, the evicted key is always the least-recently
    /// *used* one, and the hit/miss/eviction counters balance exactly.
    #[test]
    fn cache_lru_matches_a_reference_model(capacity in 1usize..=4, seed in any::<u64>()) {
        use optsched_service::ResultCache;
        use std::collections::HashMap;

        let (sig, canon, result) = cache_fixture();
        let cache = ResultCache::bounded(1, capacity); // one shard: capacity == shard capacity
        // The model mirrors the shard: key -> recency stamp, one clock tick
        // per operation (the cache's shard clock advances on every lookup
        // *and* insert), evict the minimum stamp on overflow.
        let mut model: HashMap<usize, u64> = HashMap::new();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        let mut lookups = 0u64;

        for (clock, (is_lookup, k)) in cache_ops(seed, 48).into_iter().enumerate() {
            let alg = format!("alg{k}");
            let stamp = clock as u64;
            if is_lookup {
                lookups += 1;
                let got = cache.lookup(sig, &canon, &alg, 0).is_some();
                let expected = model.contains_key(&k);
                prop_assert_eq!(got, expected, "lookup of key {} disagrees with the model", k);
                if expected {
                    model.insert(k, stamp); // a hit refreshes recency
                    hits += 1;
                } else {
                    misses += 1;
                }
            } else {
                cache.insert(sig, &canon, &alg, 0, result.clone());
                model.insert(k, stamp); // re-insert refreshes in place
                if model.len() > capacity {
                    let victim = *model.iter().min_by_key(|(_, s)| **s).unwrap().0;
                    model.remove(&victim);
                    evictions += 1;
                }
            }
            prop_assert!(
                cache.stats().entries <= capacity,
                "the shard exceeded its capacity"
            );
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.entries, model.len(), "live entries match the model");
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, misses);
        prop_assert_eq!(stats.evictions, evictions);
        prop_assert_eq!(stats.expired, 0, "no TTL, no expiry");
        prop_assert_eq!(stats.hits + stats.misses, lookups, "counters balance");
    }

    /// `max_age = ZERO` makes every entry stale by its first lookup: for any
    /// op sequence not a single lookup is served, stale entries are expired
    /// (never LRU-evicted), and the shard still respects its capacity.
    #[test]
    fn cache_expired_entries_are_never_served(capacity in 1usize..=4, seed in any::<u64>()) {
        use optsched_service::ResultCache;
        use std::time::Duration;

        let (sig, canon, result) = cache_fixture();
        let cache = ResultCache::with_max_age(1, capacity, Some(Duration::ZERO));
        let mut lookups = 0u64;
        for (is_lookup, k) in cache_ops(seed, 48) {
            let alg = format!("alg{k}");
            if is_lookup {
                lookups += 1;
                prop_assert!(
                    cache.lookup(sig, &canon, &alg, 0).is_none(),
                    "an expired entry was served"
                );
            } else {
                cache.insert(sig, &canon, &alg, 0, result.clone());
            }
            prop_assert!(cache.stats().entries <= capacity);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, 0, "nothing stale is ever a hit");
        prop_assert_eq!(stats.misses, lookups);
        prop_assert_eq!(stats.evictions, 0, "stale entries expire instead of evicting");
        prop_assert!(stats.entries <= capacity);
    }

    /// The lock-free atomic-slot CLOSED table against the lock-striped
    /// `Mutex<HashMap>` backend under real 4-thread interleavings: for any
    /// op stream both backends end with the same table contents (every
    /// distinct signature present, its stored `g` equal to the minimum ever
    /// submitted for it — probed via the claim protocol itself, which must
    /// answer `Duplicate`, never `Claimed`, at that minimum) and the same
    /// order-independent counter totals (`entries == misses ==` distinct
    /// signatures; hits + reopens account for every remaining claim).
    #[test]
    fn closed_table_backends_agree_under_concurrency(
        seed in any::<u64>(),
        shards in 1usize..=4,
    ) {
        use optsched::core::SearchState;
        use optsched::parallel::{ClaimOutcome, ShardedClosedTable, TableBackend};
        use std::collections::HashMap;

        // Key universe: distinct real signatures (the paper DAG's initial
        // state with one extra assignment each).
        let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
        let base = SearchState::initial(&problem).signature();
        let keys: Vec<_> = (0..12u32)
            .map(|i| base.with_assignment(NodeId(i % 6), ProcId(i / 6), Cost::from(i) * 3))
            .collect();

        // Deterministic op stream (key index, g); thread t executes ops
        // i ≡ t (mod 4), so all four threads race on the shared key set.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let ops: Vec<(usize, Cost)> =
            (0..160).map(|_| ((next() % 12) as usize, (next() % 8) + 1)).collect();

        let mut min_g: HashMap<usize, Cost> = HashMap::new();
        for &(k, g) in &ops {
            min_g.entry(k).and_modify(|m| *m = (*m).min(g)).or_insert(g);
        }

        for backend in [TableBackend::Mutex, TableBackend::Atomic] {
            let table = ShardedClosedTable::with_backend(shards, backend);
            std::thread::scope(|scope| {
                for t in 0..4usize {
                    let (table, ops, keys) = (&table, &ops, &keys);
                    scope.spawn(move || {
                        for (i, &(k, g)) in ops.iter().enumerate() {
                            if i % 4 == t {
                                table.try_claim(keys[k].clone(), g, t);
                            }
                        }
                    });
                }
            });

            // Order-independent counter totals, checked before the probe
            // claims below disturb them.
            let stats = table.stats();
            let entries: u64 = stats.per_shard.iter().map(|s| s.entries as u64).sum();
            let hits: u64 = stats.per_shard.iter().map(|s| s.hits).sum();
            let misses: u64 = stats.per_shard.iter().map(|s| s.misses).sum();
            let reopens: u64 = stats.per_shard.iter().map(|s| s.reopens).sum();
            prop_assert_eq!(table.len(), min_g.len(), "{}: one entry per distinct signature", backend);
            prop_assert_eq!(entries, min_g.len() as u64, "{}", backend);
            prop_assert_eq!(misses, entries, "{}: every entry began as a miss", backend);
            prop_assert_eq!(hits + misses + reopens, ops.len() as u64, "{}: every claim accounted", backend);

            // Final contents: each signature present, its stored g no worse
            // than the best ever submitted (a claim at that minimum must
            // resolve as a duplicate, never win).
            for (&k, &mg) in &min_g {
                prop_assert!(table.contains(&keys[k]), "{}: key {} missing", backend, k);
                let outcome = table.try_claim(keys[k].clone(), mg, 7);
                prop_assert!(
                    matches!(
                        outcome,
                        ClaimOutcome::DuplicateSameOwner | ClaimOutcome::DuplicateOtherOwner
                    ),
                    "{}: stored g for key {} is worse than the submitted minimum {}",
                    backend, k, mg
                );
            }
        }
    }

    /// Arena compaction under random grow/release schedules: every live id
    /// materialises to the same state after `compact()` as before it, and
    /// draining the arena back to its root then compacting shrinks the slot
    /// capacity — after which the arena still accepts and materialises new
    /// children correctly.
    #[test]
    fn arena_compaction_preserves_live_states_and_shrinks(
        (nodes, ccr_idx, seed) in dag_params(),
        op_seed in any::<u64>(),
    ) {
        use optsched::core::engine::StateArena;
        use optsched::core::SearchState;
        use rand::Rng;

        let g = make_dag(nodes, ccr_idx, seed);
        let problem = SchedulingProblem::new(g, ProcNetwork::fully_connected(2));
        let h = HeuristicKind::PaperStaticLevel;
        let mut arena = StateArena::new(&problem, ArenaConfig::default());
        let root = arena.insert_root(SearchState::initial(&problem));
        let mut handles = vec![root];

        let mut op_rng = StdRng::seed_from_u64(op_seed);
        for _ in 0..60 {
            let op = op_rng.next_u32();
            if op % 3 < 2 {
                // Grow: store a child of a random held state.
                let pick = (op as usize / 4) % handles.len();
                let parent = arena.materialise(handles[pick]).clone();
                let ready = parent.ready_nodes(&problem);
                if !ready.is_empty() {
                    let n = ready[(op as usize / 8) % ready.len()];
                    let p = ProcId((op / 16) % problem.num_procs() as u32);
                    let d = parent.peek_child(&problem, n, p, h);
                    handles.push(arena.insert_child(handles[pick], &d));
                }
            } else if handles.len() > 1 {
                // Release a random non-root handle.
                let pick = 1 + (op as usize / 4) % (handles.len() - 1);
                arena.release(handles.swap_remove(pick));
            }
        }

        // Snapshot every live state, compact, verify nothing moved.
        let expected: Vec<_> = handles
            .iter()
            .map(|&id| {
                let s = arena.materialise(id);
                (id, s.signature(), s.g())
            })
            .collect();
        let cap_before = arena.capacity();
        arena.compact();
        prop_assert!(arena.capacity() <= cap_before, "compaction never grows the arena");
        for (id, sig, cost) in &expected {
            let s = arena.materialise(*id);
            prop_assert_eq!(&s.signature(), sig, "live id survived with a different state");
            prop_assert_eq!(s.g(), *cost);
        }

        // Drain to the root and compact: the capacity collapses with it.
        let cap_full = arena.capacity();
        for id in handles.drain(1..) {
            arena.release(id);
        }
        arena.compact();
        prop_assert_eq!(arena.live_records(), 1, "only the pinned root survives the drain");
        prop_assert!(
            arena.capacity() < cap_full || cap_full <= 2,
            "a drained arena must shrink ({} -> {})",
            cap_full,
            arena.capacity()
        );

        // And the compacted arena still works end to end.
        let root_state = arena.materialise(root).clone();
        let ready = root_state.ready_nodes(&problem);
        prop_assert!(!ready.is_empty());
        let d = root_state.peek_child(&problem, ready[0], ProcId(0), h);
        let fresh = arena.insert_child(root, &d);
        prop_assert_eq!(
            arena.materialise(fresh).signature(),
            root_state.apply_delta(&problem, &d).signature(),
            "a post-compaction insert materialises correctly"
        );
    }

    /// A generous `max_age` is behaviourally identical to no TTL: the same
    /// op sequence produces the same lookup outcomes and the same counters.
    #[test]
    fn cache_long_max_age_behaves_like_no_ttl(capacity in 1usize..=4, seed in any::<u64>()) {
        use optsched_service::ResultCache;
        use std::time::Duration;

        let (sig, canon, result) = cache_fixture();
        let plain = ResultCache::bounded(1, capacity);
        let aged = ResultCache::with_max_age(1, capacity, Some(Duration::from_secs(3600)));
        for (is_lookup, k) in cache_ops(seed, 48) {
            let alg = format!("alg{k}");
            if is_lookup {
                prop_assert_eq!(
                    plain.lookup(sig, &canon, &alg, 0).is_some(),
                    aged.lookup(sig, &canon, &alg, 0).is_some(),
                    "a long TTL changed a lookup outcome"
                );
            } else {
                plain.insert(sig, &canon, &alg, 0, result.clone());
                aged.insert(sig, &canon, &alg, 0, result.clone());
            }
        }
        let (p, a) = (plain.stats(), aged.stats());
        prop_assert_eq!(p.entries, a.entries);
        prop_assert_eq!(p.hits, a.hits);
        prop_assert_eq!(p.misses, a.misses);
        prop_assert_eq!(p.evictions, a.evictions);
        prop_assert_eq!(a.expired, 0);
    }
}

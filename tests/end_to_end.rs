//! Cross-crate integration tests: every algorithm, every substrate, on the
//! paper's random workloads and on the structured application graphs.

use optsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All exact algorithms (serial A*, A* without pruning, Chen & Yu, parallel
/// A*, exhaustive enumeration) agree on the optimal schedule length over a
/// small sweep of the paper's workload space.
#[test]
fn all_exact_algorithms_agree_on_random_workloads() {
    let mut rng = StdRng::seed_from_u64(42);
    for &ccr in &PAPER_CCRS {
        for nodes in [6usize, 7] {
            let graph = generate_random_dag(
                &RandomDagConfig { nodes, ccr, ..Default::default() },
                &mut rng,
            );
            let problem = SchedulingProblem::new(graph, ProcNetwork::ring(3));

            let astar = AStarScheduler::new(&problem).run();
            let astar_full =
                AStarScheduler::new(&problem).with_pruning(PruningConfig::none()).run();
            let chen = ChenYuScheduler::new(&problem).run();
            let brute = exhaustive_optimal(&problem);
            let parallel =
                ParallelAStarScheduler::new(&problem, ParallelConfig::exact(3)).run();

            assert!(astar.is_optimal());
            assert_eq!(astar.schedule_length, brute, "ccr={ccr} v={nodes}");
            assert_eq!(astar_full.schedule_length, brute, "ccr={ccr} v={nodes}");
            assert_eq!(chen.schedule_length, brute, "ccr={ccr} v={nodes}");
            assert_eq!(parallel.schedule_length(), brute, "ccr={ccr} v={nodes}");

            // Every schedule is feasible.
            for s in [astar.expect_schedule(), chen.expect_schedule(), &parallel.schedule] {
                s.validate(problem.graph(), problem.network()).unwrap();
            }
            // And the heuristics bracket the optimum from above.
            assert!(problem.upper_bound() >= brute);
        }
    }
}

/// The Aε* schedulers (serial and parallel) always respect the (1+ε) bound
/// and never beat the optimum.
#[test]
fn approximate_schedulers_respect_their_bound() {
    // Seed and size picked so all three CCR instances stay tractable for the
    // exact searches on the vendored RNG stream (see vendor/rand).
    let mut rng = StdRng::seed_from_u64(11);
    for &ccr in &PAPER_CCRS {
        let graph = generate_random_dag(
            &RandomDagConfig { nodes: 10, ccr, ..Default::default() },
            &mut rng,
        );
        let problem = SchedulingProblem::new(graph, ProcNetwork::fully_connected(3));
        let optimal = AStarScheduler::new(&problem).run().schedule_length;
        for eps in [0.2, 0.5] {
            let bound = ((optimal as f64) * (1.0 + eps)).floor() as Cost;

            let serial = AEpsScheduler::new(&problem, eps).run();
            assert!(serial.schedule_length >= optimal);
            assert!(serial.schedule_length <= bound, "serial ccr={ccr} eps={eps}");

            let par = ParallelAStarScheduler::new(&problem, ParallelConfig::approximate(4, eps)).run();
            assert!(par.schedule_length() >= optimal);
            assert!(par.schedule_length() <= bound, "parallel ccr={ccr} eps={eps}");
        }
    }
}

/// Structured application graphs end-to-end: optimal schedules are feasible,
/// never longer than the heuristic, and never shorter than the critical-path
/// based lower bound.
#[test]
fn structured_graphs_end_to_end() {
    let cases: Vec<(&str, TaskGraph, ProcNetwork)> = vec![
        ("fork-join", fork_join(4, 5, 2), ProcNetwork::fully_connected(3)),
        ("chain", chain(8, 3, 4), ProcNetwork::ring(3)),
        ("out-tree", out_tree(2, 2, 4, 3), ProcNetwork::star(4)),
        ("in-tree", in_tree(2, 2, 4, 3), ProcNetwork::fully_connected(3)),
        ("gauss", gaussian_elimination(4, 6, 3), ProcNetwork::mesh(2, 2)),
        ("fft", fft_butterfly(2, 4, 2), ProcNetwork::hypercube(2)),
        ("lattice", diamond_lattice(3, 3, 3, 2), ProcNetwork::chain(3)),
    ];
    for (name, graph, net) in cases {
        let problem = SchedulingProblem::new(graph.clone(), net.clone());
        let optimal = AStarScheduler::new(&problem).run();
        assert!(optimal.is_optimal(), "{name}");
        let schedule = optimal.expect_schedule();
        schedule.validate(&graph, &net).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(optimal.schedule_length <= problem.upper_bound(), "{name}");
        assert!(
            optimal.schedule_length >= graph.schedule_length_lower_bound(),
            "{name}: {} < lower bound {}",
            optimal.schedule_length,
            graph.schedule_length_lower_bound()
        );
        // The heuristic baselines are feasible too.
        let (_, best) = best_heuristic_schedule(&graph, &net);
        best.validate(&graph, &net).unwrap();
        assert!(best.makespan() >= optimal.schedule_length, "{name}");
    }
}

/// A chain cannot be sped up by more processors; a wide fork-join with free
/// communication parallelises perfectly.  (Scheduling "common sense" checks
/// that exercise the whole stack.)
#[test]
fn scheduling_common_sense() {
    // Chain: optimum equals the serial time regardless of processor count.
    let chain_graph = chain(6, 5, 3);
    for p in [1usize, 2, 4] {
        let problem = SchedulingProblem::new(chain_graph.clone(), ProcNetwork::fully_connected(p));
        assert_eq!(AStarScheduler::new(&problem).run().schedule_length, 30, "p={p}");
    }

    // Fork-join with zero communication: with enough processors the makespan
    // is fork + worker + join.
    let fj = fork_join(4, 7, 0);
    let problem = SchedulingProblem::new(fj, ProcNetwork::fully_connected(4));
    assert_eq!(AStarScheduler::new(&problem).run().schedule_length, 21);

    // The same fork-join with huge communication costs collapses onto one
    // processor: 6 tasks x 7 units.
    let fj_expensive = fork_join(4, 7, 1000);
    let problem = SchedulingProblem::new(fj_expensive, ProcNetwork::fully_connected(4));
    assert_eq!(AStarScheduler::new(&problem).run().schedule_length, 42);
}

/// Heterogeneous processors and hop-scaled communication flow through the
/// whole pipeline (problem construction, search, validation).
#[test]
fn heterogeneous_and_hop_scaled_pipeline() {
    let graph = fork_join(3, 6, 2);
    let net = ProcNetwork::chain(3)
        .with_cycle_times(&[1, 2, 2])
        .with_comm_model(CommModel::HopScaled);
    let problem = SchedulingProblem::new(graph.clone(), net.clone());
    let r = AStarScheduler::new(&problem).run();
    assert!(r.is_optimal());
    r.expect_schedule().validate(&graph, &net).unwrap();
    // The serial execution on the fastest processor is an upper bound.
    assert!(r.schedule_length <= graph.total_computation());
}

/// Schedules and graphs round-trip through serde (the format the CLI uses).
#[test]
fn serde_round_trips_across_crates() {
    let mut rng = StdRng::seed_from_u64(1);
    let graph = generate_random_dag(&RandomDagConfig { nodes: 10, ccr: 1.0, ..Default::default() }, &mut rng);
    let json = serde_json::to_string(&graph).unwrap();
    let back: TaskGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(graph, back);

    let problem = SchedulingProblem::new(back, ProcNetwork::fully_connected(3));
    let r = AStarScheduler::new(&problem).run();
    let sched_json = serde_json::to_string(r.expect_schedule()).unwrap();
    let sched_back: Schedule = serde_json::from_str(&sched_json).unwrap();
    assert_eq!(sched_back.makespan(), r.schedule_length);
    sched_back.validate(problem.graph(), problem.network()).unwrap();
}

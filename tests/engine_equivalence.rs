//! Engine-equivalence suite: the unified-engine refactor must be
//! behaviour-preserving, not merely optimum-preserving.
//!
//! The serial expansion and generation counts of A*, Aε*(0) and Chen & Yu on
//! the deterministic conformance corpus are pinned below as literals,
//! captured from the pre-refactor implementations (PR 2 tree) on the same
//! corpus.  Any drift in candidate enumeration order, pruning placement,
//! duplicate-detection order or tie-breaking shows up as a loud mismatch
//! here, with the instance and family named.
//!
//! The suite also asserts that the two state-store layouts (eager
//! clone-per-generation vs. the delta arena) drive bit-identical searches —
//! the arena is a memory/time optimisation, never a behaviour change.

use optsched::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The same deterministic corpus as `tests/conformance.rs`.
fn corpus() -> Vec<(String, TaskGraph, ProcNetwork)> {
    let mut cases: Vec<(String, TaskGraph, ProcNetwork)> = vec![
        ("paper-example".into(), paper_example_dag(), ProcNetwork::ring(3)),
        ("fork-join".into(), fork_join(3, 4, 2), ProcNetwork::fully_connected(3)),
        ("chain".into(), chain(6, 3, 4), ProcNetwork::ring(3)),
        ("out-tree".into(), out_tree(2, 2, 4, 3), ProcNetwork::fully_connected(2)),
        ("in-tree".into(), in_tree(2, 2, 4, 3), ProcNetwork::star(3)),
    ];
    let mut rng = StdRng::seed_from_u64(42);
    for &ccr in &PAPER_CCRS {
        for nodes in [6usize, 7] {
            let g = generate_random_dag(
                &RandomDagConfig { nodes, ccr, ..Default::default() },
                &mut rng,
            );
            cases.push((format!("random-v{nodes}-ccr{ccr}"), g, ProcNetwork::ring(3)));
        }
    }
    cases
}

/// Pre-refactor serial counts, one row per corpus instance:
/// (name, optimum,
///  A* expanded, A* generated,
///  Aε*(0) expanded, Aε*(0) generated,
///  Chen & Yu expanded, Chen & Yu generated).
///
/// Captured from the clone-per-generation implementations at commit
/// "PR 2: Sharded global duplicate detection..." with default
/// configurations (all pruning, paper heuristic).  Pinned as literals so
/// behaviour drift is loud; if an intentional algorithm change moves them,
/// re-capture and update this table in the same commit.
type PinnedRow = (&'static str, Cost, u64, u64, u64, u64, u64, u64);

const PINNED: &[PinnedRow] = &[
    ("paper-example", 14, 34, 62, 34, 62, 325, 548),
    ("fork-join", 16, 10, 22, 10, 22, 157, 355),
    ("chain", 18, 6, 7, 6, 7, 16, 43),
    ("out-tree", 19, 100, 148, 100, 148, 423, 680),
    ("in-tree", 18, 589, 677, 589, 677, 1405, 3542),
    ("random-v6-ccr0.1", 155, 14, 20, 14, 20, 160, 393),
    ("random-v7-ccr0.1", 163, 414, 438, 414, 438, 580, 1673),
    ("random-v6-ccr1", 203, 6, 7, 6, 7, 16, 43),
    ("random-v7-ccr1", 162, 161, 317, 161, 317, 598, 1845),
    ("random-v6-ccr10", 242, 322, 503, 338, 523, 884, 2079),
    ("random-v7-ccr10", 225, 225, 291, 225, 291, 706, 1698),
];

#[test]
fn serial_expansion_counts_match_the_pre_refactor_implementations() {
    let cases = corpus();
    assert_eq!(cases.len(), PINNED.len(), "corpus and pinned table out of sync");
    for ((name, graph, net), pinned) in cases.into_iter().zip(PINNED) {
        let (pname, optimum, a_exp, a_gen, e_exp, e_gen, c_exp, c_gen) = *pinned;
        assert_eq!(name, pname, "corpus order changed — re-pin the table");
        let problem = SchedulingProblem::new(graph, net);

        let astar = AStarScheduler::new(&problem).run();
        assert!(astar.is_optimal(), "{name}: A*");
        assert_eq!(astar.schedule_length, optimum, "{name}: A* optimum");
        assert_eq!(
            (astar.stats.expanded, astar.stats.generated),
            (a_exp, a_gen),
            "{name}: A* expansion counts drifted from the pre-refactor baseline"
        );

        let aeps = AEpsScheduler::new(&problem, 0.0).run();
        assert_eq!(aeps.schedule_length, optimum, "{name}: Aε*(0) optimum");
        assert_eq!(
            (aeps.stats.expanded, aeps.stats.generated),
            (e_exp, e_gen),
            "{name}: Aε*(0) expansion counts drifted from the pre-refactor baseline"
        );

        let chen = ChenYuScheduler::new(&problem).run();
        assert_eq!(chen.schedule_length, optimum, "{name}: Chen & Yu optimum");
        assert_eq!(
            (chen.stats.expanded, chen.stats.generated),
            (c_exp, c_gen),
            "{name}: Chen & Yu expansion counts drifted from the pre-refactor baseline"
        );
    }
}

/// The store layout is a pure memory/time trade: the eager
/// clone-per-generation store and the delta arena must drive bit-identical
/// searches for every family, with the arena holding (far) fewer live full
/// states.
#[test]
fn eager_and_arena_stores_drive_identical_searches() {
    for (name, graph, net) in corpus() {
        let problem = SchedulingProblem::new(graph, net);
        type Run = Box<dyn Fn(StoreKind) -> SearchResult>;
        let runs: Vec<(&str, Run)> = vec![
            ("astar", {
                let p = problem.clone();
                Box::new(move |s| AStarScheduler::new(&p).with_store(s).run())
            }),
            ("aeps", {
                let p = problem.clone();
                Box::new(move |s| AEpsScheduler::new(&p, 0.0).with_store(s).run())
            }),
            ("chenyu", {
                let p = problem.clone();
                Box::new(move |s| ChenYuScheduler::new(&p).with_store(s).run())
            }),
            ("exhaustive", {
                let p = problem.clone();
                Box::new(move |s| ExhaustiveScheduler::new(&p).with_store(s).run())
            }),
        ];
        for (family, run) in runs {
            if family == "exhaustive" && problem.num_nodes() > 7 {
                continue; // brute force: keep the suite fast
            }
            let eager = run(StoreKind::EagerClone);
            let arena = run(StoreKind::DeltaArena);
            assert_eq!(eager.schedule_length, arena.schedule_length, "{name}/{family}");
            assert_eq!(eager.outcome, arena.outcome, "{name}/{family}");
            assert_eq!(
                (eager.stats.expanded, eager.stats.generated, eager.stats.duplicates),
                (arena.stats.expanded, arena.stats.generated, arena.stats.duplicates),
                "{name}/{family}: stores must not change search behaviour"
            );
            assert!(
                arena.stats.peak_live_states <= eager.stats.peak_live_states,
                "{name}/{family}: the arena must not hold more live full states"
            );
        }
    }
}

/// Pinned q = 1 parallel counts, one row per corpus instance:
/// (name, optimum, expanded, generated).
///
/// A single-PPE parallel run has no neighbours, hence no elections, no load
/// sharing and no thread races: it is a deterministic replay of the PPE
/// worker loop, pinned here with the same re-pin-in-the-same-commit
/// discipline as the serial literals above.  Captured at the PR 4
/// arena-backed-worker change; the counts are identical across both
/// duplicate-detection modes and both store layouts (asserted below), so any
/// divergence between those paths is loud too.
const PINNED_PARALLEL_Q1: &[(&str, Cost, u64, u64)] = &[
    ("paper-example", 14, 34, 61),
    ("fork-join", 16, 10, 21),
    ("chain", 18, 1, 1),
    ("out-tree", 19, 76, 137),
    ("in-tree", 18, 589, 676),
    ("random-v6-ccr0.1", 155, 13, 19),
    ("random-v7-ccr0.1", 163, 414, 437),
    ("random-v6-ccr1", 203, 1, 1),
    ("random-v7-ccr1", 162, 161, 316),
    ("random-v6-ccr10", 242, 322, 502),
    ("random-v7-ccr10", 225, 225, 290),
];

#[test]
fn single_ppe_parallel_counts_are_pinned_across_modes_and_stores() {
    let cases = corpus();
    assert_eq!(cases.len(), PINNED_PARALLEL_Q1.len(), "corpus and pinned table out of sync");
    for ((name, graph, net), pinned) in cases.into_iter().zip(PINNED_PARALLEL_Q1) {
        let (pname, optimum, expanded, generated) = *pinned;
        assert_eq!(name, pname, "corpus order changed — re-pin the table");
        let problem = SchedulingProblem::new(graph, net);
        for mode in [DuplicateDetection::ShardedGlobal, DuplicateDetection::Local] {
            for store in [StoreKind::DeltaArena, StoreKind::EagerClone] {
                let cfg =
                    ParallelConfig::exact(1).with_duplicate_detection(mode).with_store(store);
                let r = ParallelAStarScheduler::new(&problem, cfg).run();
                let ctx = format!("{name}: q=1 mode={mode} store={store}");
                assert!(r.is_optimal(), "{ctx}");
                assert_eq!(r.schedule_length(), optimum, "{ctx}");
                let total = r.total_stats();
                assert_eq!(
                    (total.expanded, total.generated),
                    (expanded, generated),
                    "{ctx}: deterministic-replay counts drifted — if the change is \
                     intentional, re-pin PINNED_PARALLEL_Q1 in the same commit"
                );
                assert_eq!(total.election_transfers, 0, "{ctx}: q=1 has no neighbours");
            }
        }
    }
}

/// `SearchLimits` now flow through every family, including the exhaustive
/// enumerator (which silently ignored them before the engine refactor).
#[test]
fn limits_flow_through_every_family() {
    let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3));
    let limits = SearchLimits::expansions(1);
    let outcomes = [
        AStarScheduler::new(&problem).with_limits(limits).run().outcome,
        AEpsScheduler::new(&problem, 0.2).with_limits(limits).run().outcome,
        ChenYuScheduler::new(&problem).with_limits(limits).run().outcome,
        ExhaustiveScheduler::new(&problem).with_limits(limits).run().outcome,
    ];
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(*o, SearchOutcome::LimitReached, "family #{i}");
    }
}

//! Integration tests that pin the worked example of the paper
//! (Figures 1–5 and the surrounding text) across crate boundaries.

use optsched::prelude::*;

fn example_problem() -> SchedulingProblem {
    SchedulingProblem::new(paper_example_dag(), ProcNetwork::ring(3))
}

/// Figure 2: static levels, b-levels and t-levels of the example DAG.
#[test]
fn figure2_level_attributes() {
    let graph = paper_example_dag();
    let levels = GraphLevels::compute(&graph);
    let expected = [(12, 19, 0), (10, 16, 3), (10, 16, 3), (6, 10, 4), (7, 12, 7), (2, 2, 17)];
    for (i, &(sl, b, t)) in expected.iter().enumerate() {
        let n = NodeId(i as u32);
        assert_eq!(levels.static_level(n), sl);
        assert_eq!(levels.b_level(n), b);
        assert_eq!(levels.t_level(n), t);
    }
}

/// Figure 3 (root): the first expansion schedules n1 on one representative
/// processor only, with cost f = 2 + 10, because the three empty ring PEs are
/// isomorphic.
#[test]
fn figure3_root_expansion() {
    let problem = example_problem();
    // All three PEs of the ring are interchangeable while empty.
    let net = problem.network();
    assert!(net.interchangeable(ProcId(0), ProcId(1)));
    assert!(net.interchangeable(ProcId(1), ProcId(2)));
    // And n2 / n3 are equivalent nodes (Definition 3).
    assert!(problem.graph().nodes_equivalent(NodeId(1), NodeId(2)));
}

/// Figure 4: the optimal schedule length is 14 time units, for every exact
/// algorithm in the workspace.
#[test]
fn figure4_every_exact_algorithm_finds_14() {
    let problem = example_problem();

    let astar = AStarScheduler::new(&problem).run();
    assert!(astar.is_optimal());
    assert_eq!(astar.schedule_length, 14);
    astar.expect_schedule().validate(problem.graph(), problem.network()).unwrap();

    let chen = ChenYuScheduler::new(&problem).run();
    assert!(chen.is_optimal());
    assert_eq!(chen.schedule_length, 14);

    assert_eq!(exhaustive_optimal(&problem), 14);

    let aeps = AEpsScheduler::new(&problem, 0.0).run();
    assert_eq!(aeps.schedule_length, 14);

    for q in [2, 3, 4] {
        let par = ParallelAStarScheduler::new(&problem, ParallelConfig::exact(q)).run();
        assert_eq!(par.schedule_length(), 14, "q = {q}");
    }
}

/// Section 3.2: the upper-bound heuristic is linear-time list scheduling; its
/// schedule is feasible and at least as long as the optimum.
#[test]
fn upper_bound_brackets_the_optimum() {
    let problem = example_problem();
    let ub = problem.upper_bound();
    assert!(ub >= 14);
    assert!(problem.lower_bound() <= 14);
    problem.upper_bound_schedule().validate(problem.graph(), problem.network()).unwrap();
}

/// Section 4 of the paper lets the search use up to `v` target processors and
/// observes that far fewer are actually used; with all six processors
/// available the optimum of the example stays 14 and uses at most 3.
#[test]
fn extra_processors_do_not_change_the_example_optimum() {
    let problem = SchedulingProblem::new(paper_example_dag(), ProcNetwork::fully_connected(6));
    let r = AStarScheduler::new(&problem).run();
    assert!(r.is_optimal());
    assert!(r.schedule_length <= 14);
    assert!(r.expect_schedule().procs_used() <= 3);
}

/// The Gantt rendering of the optimal schedule mentions every task exactly once.
#[test]
fn gantt_rendering_of_the_optimal_schedule() {
    let problem = example_problem();
    let r = AStarScheduler::new(&problem).run();
    let text = render_gantt(r.expect_schedule(), problem.graph());
    assert!(text.contains("schedule length = 14"));
    for n in problem.graph().node_ids() {
        let label = problem.graph().node(n).label.clone().unwrap();
        assert_eq!(text.matches(&format!("{label}[")).count(), 1, "{label}");
    }
}
